"""Persist-ordering race detection: happens-before over persist graphs.

Both real bugs this repo has shipped fixes for - the cross-thread
commit-ordering violation (fixed by FIFO WPQ backpressure) and the
same-line undo-chain loss (fixed by ``ordered_line_log_persists``) - are
instances of one bug class: *conflicting persists with no
durability-ordering edge between them*. Each was found by sweeping
thousands of crash points through the differential fuzzer. This module
finds candidates of that class in a **single instrumented run**, then
hands the fuzzer a witness to verify (``asap-repro fuzz --from-races``).

How it works:

1. A :class:`RaceTracer` (a :class:`~repro.common.observe.SimObserver`)
   records every persist operation the WPQs accept - submission and
   acceptance cycles, channel, kind, owning region - plus the protocol
   events that define conflicts and orderings: same-line undo chains
   (``lpo_chained``), Dependence-List captures, redo commit markers, and
   lock hand-offs.
2. :func:`build_graph` turns the trace into a happens-before DAG whose
   nodes are accepted persist ops and whose edges are only the orderings
   the scheme *guarantees* - as declared by
   :meth:`~repro.persist.base.PersistenceScheme.ordering_edges` (the
   per-channel WPQ FIFO admission chain, the per-line log-persist chain,
   LockBit log-before-data gating, Dependence-List commit/marker gating).
   On top of the guaranteed edges, the pass uses *trace-order pruning*:
   op A is treated as before op B when A was accepted strictly before B
   was even submitted - in this execution A was already durable when B
   came into existence, so the pair cannot invert here.
3. A reachability pass (prefix bitsets over the acceptance-ordered DAG)
   then reports every conflicting pair left unordered, as the
   ``ASAP-R001..R004`` rules (:mod:`repro.analysis.rules`). Each
   :class:`RaceFinding` carries the two op sites, a crash *window*
   (the cycle span in which exactly one of the pair is durable), and -
   for fuzz cases - the replayable schedule, i.e. everything a directed
   fuzzer run needs to confirm the race.

A finding is ``CONFIRMED`` when the trace itself shows an
acceptance-order inversion (the ops became durable in the opposite of
submission/chain order), or when directed crash replay inside the window
produces a recovery divergence or a defensively-skipped undo chain.
Otherwise it is ``PLAUSIBLE`` and the witness tells the fuzzer where to
look. Under the default (fixed) configuration every ASAP ordering edge
is in force and the detector reports zero findings across the workload
suite - asserted by ``tests/analysis/test_races.py``.

See docs/RACES.md for edge semantics per scheme and a worked example.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.rules import Violation, get_rule
from repro.common.observe import SimObserver
from repro.mem.wpq import DPO, LPO, WB

#: findings reported per (rule, line) before suppression kicks in; dense
#: conflicts (every pair of N persists to one hot line) say nothing new
#: after the first few pairs, and the suppressed count is reported
MAX_PAIRS_PER_SITE = 4

CONFIRMED = "CONFIRMED"
PLAUSIBLE = "PLAUSIBLE"

#: persist-op kinds that put *data* bytes at their home address
_DATA_KINDS = (DPO, WB)


# ---------------------------------------------------------------------------
# trace recording
# ---------------------------------------------------------------------------


@dataclass
class PersistNode:
    """One accepted persist operation (a node of the race graph)."""

    index: int  # position in global acceptance order
    op_id: int
    kind: str
    target_line: int
    data_line: int
    rid: Optional[int]
    channel: int
    submitted_at: int
    accepted_at: int
    payload: Dict[int, int]
    backpressured: bool = False
    dropped: bool = False
    #: set for redo commit markers: (rid, commit_seq)
    marker: Optional[Tuple[int, int]] = None

    @property
    def thread(self) -> Optional[int]:
        return None if self.rid is None else self.rid >> 32

    def site(self) -> dict:
        """The finding-facing description of this op."""
        out = {
            "op": self.op_id,
            "kind": self.kind,
            "line": self.target_line,
            "data_line": self.data_line,
            "channel": self.channel,
            "submitted_at": self.submitted_at,
            "accepted_at": self.accepted_at,
        }
        if self.rid is not None:
            out["rid"] = self.rid
            out["thread"] = self.thread
        if self.marker is not None:
            out["commit_seq"] = self.marker[1]
        return out


class RaceTracer(SimObserver):
    """Records the persist-op trace one instrumented run produces.

    Attach with :meth:`attach` (the :class:`~repro.analysis.Sanitizer`
    idiom): the tracer takes every observer hook point - WPQs, cache
    hierarchy, the ASAP engine or scheme, and the machine's locks. Race
    tracing is a dedicated run; observer slots are single-valued.
    """

    def __init__(self):
        self.machine = None
        self.nodes: List[PersistNode] = []
        self._node_of_op: Dict[int, PersistNode] = {}
        self._channel_of_wpq: Dict[int, int] = {}
        #: (prev_rid, dep_rid, line) same-line undo-chain conflicts
        self.chains: List[Tuple[int, int, int]] = []
        #: rid -> rids it depends on (Dependence-List captures)
        self.deps: Dict[int, Set[int]] = {}
        #: op_id -> (rid, commit_seq) for redo commit markers in flight
        self._marker_ops: Dict[int, Tuple[int, int]] = {}
        #: rid -> commit cycle
        self.commits: Dict[int, int] = {}
        #: lock name -> [(thread, acquire cycle)] hand-off history
        self.lock_order: Dict[str, List[Tuple[int, int]]] = {}
        #: line -> cycle the in-flight memory fetch started (MSHR allocate)
        self._fetch_started: Dict[int, int] = {}
        #: completed fetch windows: (line, start, end, merged requesters).
        #: Overlapping windows are the memory-level parallelism the
        #: non-blocking hierarchy recovers; persists accepted inside a
        #: window raced an outstanding miss.
        self.miss_windows: List[Tuple[int, int, int, int]] = []
        self.events = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, machine) -> "RaceTracer":
        from repro.core.engine import AsapEngine

        self.machine = machine
        for channel in machine.memory.channels:
            channel.wpq.observer = self
            self._channel_of_wpq[id(channel.wpq)] = channel.index
        machine.hierarchy.observer = self
        machine.scheme.observer = self
        engine = getattr(machine.scheme, "engine", None)
        if isinstance(engine, AsapEngine):
            engine.observer = self
        for lock in machine.locks:
            lock.observer = self
        return self

    def _now(self) -> int:
        return self.machine.scheduler.now if self.machine is not None else 0

    # -- WPQ events --------------------------------------------------------

    def wpq_submitted(self, wpq, op) -> None:
        self.events += 1

    def wpq_accepted(self, wpq, op) -> None:
        self.events += 1
        node = PersistNode(
            index=len(self.nodes),
            op_id=op.op_id,
            kind=op.kind,
            target_line=op.target_line,
            data_line=op.data_line,
            rid=op.rid,
            channel=self._channel_of_wpq.get(id(wpq), 0),
            submitted_at=op.submitted_at
            if op.submitted_at is not None
            else self._now(),
            accepted_at=self._now(),
            payload=dict(op.materialized_payload()),
            backpressured=op.backpressured,
            marker=self._marker_ops.get(op.op_id),
        )
        self.nodes.append(node)
        self._node_of_op[op.op_id] = node

    def wpq_dropped(self, wpq, op) -> None:
        self.events += 1
        node = self._node_of_op.get(op.op_id)
        if node is not None:
            node.dropped = True

    # -- protocol events ---------------------------------------------------

    def lpo_chained(self, engine, rid, line, prev_owner) -> None:
        self.events += 1
        self.chains.append((prev_owner, rid, line))

    def dep_captured(self, engine, rid, owner) -> None:
        self.events += 1
        self.deps.setdefault(rid, set()).add(owner)

    def region_committed(self, engine, rid) -> None:
        self.events += 1
        self.commits[rid] = self._now()

    def marker_issued(self, scheme, rid, seq, op) -> None:
        self.events += 1
        self._marker_ops[op.op_id] = (rid, seq)

    # -- cache hierarchy events --------------------------------------------

    def mshr_allocated(self, hierarchy, line, core_id) -> None:
        self.events += 1
        self._fetch_started[line] = self._now()

    def mshr_merged(self, hierarchy, line, core_id) -> None:
        self.events += 1

    def mshr_filled(self, hierarchy, line, waiters) -> None:
        self.events += 1
        start = self._fetch_started.pop(line, self._now())
        self.miss_windows.append((line, start, self._now(), waiters))

    def mshr_stalled(self, hierarchy, line, core_id) -> None:
        self.events += 1

    # -- lock events -------------------------------------------------------

    def lock_acquired(self, lock, thread_id) -> None:
        self.events += 1
        self.lock_order.setdefault(lock.name, []).append(
            (thread_id, self._now())
        )

    # -- trace-level helpers ----------------------------------------------

    def first_lpo(self, rid: int, line: int) -> Optional[PersistNode]:
        """The first accepted LPO logging ``line`` for region ``rid``."""
        for node in self.nodes:
            if node.kind == LPO and node.rid == rid and node.data_line == line:
                return node
        return None


# ---------------------------------------------------------------------------
# the happens-before graph
# ---------------------------------------------------------------------------


class RaceGraph:
    """Happens-before over a :class:`RaceTracer` trace.

    Nodes are in global acceptance order (the order the tracer recorded
    them). ``edge_preds[i]`` holds the guaranteed-edge predecessors of
    node ``i`` - every guaranteed edge points from an earlier-accepted
    node to a later one, because each edge kind *gates acceptance or
    submission* on a prior acceptance. Reachability therefore folds left
    to right with prefix bitsets, merging trace-order pruning (node
    ``j`` precedes ``i`` when ``accepted(j) < submitted(i)``) into the
    same ancestor masks so mixed guaranteed/temporal paths compose.
    """

    def __init__(self, tracer: RaceTracer, edges_in_force: FrozenSet[str]):
        self.tracer = tracer
        self.edges_in_force = edges_in_force
        self.nodes = tracer.nodes
        self.edge_preds: List[Set[int]] = [set() for _ in self.nodes]
        self.edge_count = 0
        self._build_edges()
        self._ancestors = self._close()

    # -- construction ------------------------------------------------------

    def _add_edge(self, pred: PersistNode, succ: PersistNode) -> None:
        if pred.index == succ.index:
            return
        lo, hi = sorted((pred.index, succ.index))
        # guaranteed edges always point acceptance-forward (the guarantee
        # is exactly that the predecessor's acceptance gates the
        # successor); a backward pair means the guarantee was violated in
        # this trace, which the conflict pass reports as an inversion
        if pred.index == lo:
            self.edge_preds[hi].add(lo)
            self.edge_count += 1

    def _build_edges(self) -> None:
        nodes = self.nodes
        if "wpq-fifo" in self.edges_in_force:
            last_on_channel: Dict[int, PersistNode] = {}
            for node in nodes:
                prev = last_on_channel.get(node.channel)
                if prev is not None:
                    self._add_edge(prev, node)
                last_on_channel[node.channel] = node
        if "line-chain" in self.edges_in_force:
            for prev_rid, dep_rid, line in self.tracer.chains:
                a = self.tracer.first_lpo(prev_rid, line)
                b = self.tracer.first_lpo(dep_rid, line)
                if a is not None and b is not None:
                    self._add_edge(a, b)
        if "lockbit-gate" in self.edges_in_force:
            lpo_of: Dict[Tuple[int, int], PersistNode] = {}
            for node in nodes:
                if node.kind == LPO and node.rid is not None:
                    lpo_of.setdefault((node.rid, node.data_line), node)
            for node in nodes:
                if node.kind in _DATA_KINDS and node.rid is not None:
                    gate = lpo_of.get((node.rid, node.target_line))
                    if gate is not None:
                        self._add_edge(gate, node)
        if "marker-gate" in self.edges_in_force:
            marker_of: Dict[int, PersistNode] = {}
            for node in nodes:
                if node.marker is not None:
                    marker_of[node.marker[0]] = node
            for rid, marker in marker_of.items():
                for owner in self.tracer.deps.get(rid, ()):
                    pred = marker_of.get(owner)
                    if pred is not None:
                        self._add_edge(pred, marker)
            # post-commit in-place updates are issued only after the
            # region's own marker is durable
            for node in nodes:
                if node.kind in _DATA_KINDS and node.rid is not None:
                    gate = marker_of.get(node.rid)
                    if gate is not None:
                        self._add_edge(gate, node)
        if "sync-commit" in self.edges_in_force:
            last_of_thread: Dict[int, PersistNode] = {}
            for node in nodes:
                thread = node.thread
                if thread is None:
                    continue
                prev = last_of_thread.get(thread)
                if prev is not None:
                    self._add_edge(prev, node)
                last_of_thread[thread] = node

    def _close(self) -> List[int]:
        """Ancestor bitmask per node (bit ``j`` set: ``j`` before ``i``)."""
        accepted = [n.accepted_at for n in self.nodes]
        ancestors: List[int] = []
        for i, node in enumerate(self.nodes):
            # trace-order pruning: everything accepted strictly before
            # this op was submitted is a prefix of acceptance order
            k = bisect_left(accepted, node.submitted_at, 0, i)
            mask = (1 << k) - 1
            for p in self.edge_preds[i]:
                mask |= ancestors[p] | (1 << p)
            ancestors.append(mask)
        return ancestors

    # -- queries -----------------------------------------------------------

    def ordered(self, a: PersistNode, b: PersistNode) -> bool:
        """True when the pair has *some* durability ordering."""
        lo, hi = sorted((a.index, b.index))
        return bool((self._ancestors[hi] >> lo) & 1)


# ---------------------------------------------------------------------------
# findings
# ---------------------------------------------------------------------------


@dataclass
class RaceFinding:
    """One unordered conflicting-persist pair, with its witness."""

    rule_id: str
    message: str
    site_a: dict
    site_b: dict
    status: str  # CONFIRMED | PLAUSIBLE
    evidence: str
    #: crash cycles [lo, hi] in which exactly one of the pair is durable
    window: Tuple[int, int]
    #: the window as fractions of the traced run's total cycles - the
    #: form the fuzzer's corpus pins crash points in
    crash_fracs: List[float] = field(default_factory=list)
    source: Optional[str] = None
    #: replayable FuzzCase JSON when the trace came from a fuzz case
    schedule: Optional[dict] = None

    def to_dict(self) -> dict:
        rule = get_rule(self.rule_id)
        return {
            "rule_id": self.rule_id,
            "rule_name": rule.name,
            "severity": rule.severity,
            "status": self.status,
            "message": self.message,
            "evidence": self.evidence,
            "site_a": self.site_a,
            "site_b": self.site_b,
            "window": list(self.window),
            "crash_fracs": self.crash_fracs,
            **({"source": self.source} if self.source else {}),
            **({"schedule": self.schedule} if self.schedule else {}),
        }

    def to_violation(self) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            message=f"[{self.status}] {self.message}",
            cycle=self.window[0],
            source=self.source,
            details={
                "site_a": self.site_a,
                "site_b": self.site_b,
                "window": list(self.window),
            },
        )


@dataclass
class RacesResult:
    """Everything one detector pass produced."""

    scheme: str
    source: str
    edges_in_force: FrozenSet[str]
    cycles: int
    nodes: int
    edges: int
    events: int
    findings: List[RaceFinding] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_target_dict(self) -> dict:
        return {
            "source": self.source,
            "scheme": self.scheme,
            "edges_in_force": sorted(self.edges_in_force),
            "cycles": self.cycles,
            "nodes": self.nodes,
            "edges": self.edges,
            "events_checked": self.events,
            "suppressed_pairs": self.suppressed,
            "violations": [f.to_dict() for f in self.findings],
        }


def _pair_finding(
    rule_id: str,
    a: PersistNode,
    b: PersistNode,
    message: str,
    total_cycles: int,
    inverted: bool,
    source: Optional[str],
    schedule: Optional[dict],
) -> RaceFinding:
    lo = min(a.accepted_at, b.accepted_at)
    hi = max(a.accepted_at, b.accepted_at)
    # fractions of the run's *thread-finish* cycle count - the same
    # denominator the fuzzer's crash sweeps use, so a witness frac pastes
    # straight into a corpus entry's crash_fracs. Persistence work (and
    # hence a window) can outlive the last thread, so fracs may exceed 1.
    fracs = sorted(
        {
            round(max(0.0, cyc / total_cycles), 6) if total_cycles else 0.0
            for cyc in (lo, (lo + hi) // 2, hi)
        }
    )
    if inverted:
        status, evidence = CONFIRMED, (
            "acceptance-order inversion observed in the trace: the later "
            f"op became durable first (accepted at {lo} vs {hi})"
        )
    else:
        status, evidence = PLAUSIBLE, (
            "no ordering edge between the pair; directed crash replay in "
            f"cycles [{lo}, {hi}] can expose the race"
        )
    return RaceFinding(
        rule_id=rule_id,
        message=message,
        site_a=a.site(),
        site_b=b.site(),
        status=status,
        evidence=evidence,
        window=(lo, hi),
        crash_fracs=fracs,
        source=source,
        schedule=schedule,
    )


def analyze_trace(
    tracer: RaceTracer,
    edges_in_force: FrozenSet[str],
    total_cycles: int,
    scheme: str,
    source: str,
    schedule: Optional[dict] = None,
) -> RacesResult:
    """Run the happens-before pass over one recorded trace."""
    graph = RaceGraph(tracer, edges_in_force)
    result = RacesResult(
        scheme=scheme,
        source=source,
        edges_in_force=edges_in_force,
        cycles=total_cycles,
        nodes=len(tracer.nodes),
        edges=graph.edge_count,
        events=tracer.events,
    )
    per_site: Dict[Tuple[str, int], int] = {}

    def report(rule_id, a, b, message, inverted) -> None:
        key = (rule_id, a.target_line)
        per_site[key] = per_site.get(key, 0) + 1
        if per_site[key] > MAX_PAIRS_PER_SITE:
            result.suppressed += 1
            return
        result.findings.append(
            _pair_finding(
                rule_id, a, b, message, total_cycles, inverted, source, schedule
            )
        )

    # R001: same-line data persists from different regions
    by_line: Dict[int, List[PersistNode]] = {}
    for node in tracer.nodes:
        if node.kind in _DATA_KINDS and node.rid is not None:
            by_line.setdefault(node.target_line, []).append(node)
    for line, ops in sorted(by_line.items()):
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if a.rid == b.rid or a.payload == b.payload:
                    continue
                if graph.ordered(a, b):
                    continue
                inverted = (a.submitted_at < b.submitted_at) != (
                    a.accepted_at < b.accepted_at
                )
                report(
                    "ASAP-R001",
                    a,
                    b,
                    f"data persists for line {line:#x} by regions "
                    f"{a.rid:#x} and {b.rid:#x} have no durability "
                    "ordering; which payload survives a crash depends on "
                    "WPQ timing",
                    inverted,
                )

    # R002: chained same-line log persists out of chain order
    seen_chains: Set[Tuple[int, int, int]] = set()
    for prev_rid, dep_rid, line in tracer.chains:
        key = (prev_rid, dep_rid, line)
        if key in seen_chains:
            continue
        seen_chains.add(key)
        a = tracer.first_lpo(prev_rid, line)
        b = tracer.first_lpo(dep_rid, line)
        if a is None or b is None or graph.ordered(a, b):
            continue
        report(
            "ASAP-R002",
            a,
            b,
            f"log entries for line {line:#x} form an undo chain "
            f"(region {dep_rid:#x} logs region {prev_rid:#x}'s "
            "uncommitted data) but nothing orders their durability; a "
            "crash with only the dependent's entry durable breaks the "
            "chain",
            inverted=b.accepted_at < a.accepted_at,
        )

    # R003: a region's data persist unordered w.r.t. its own log entry
    lpo_of: Dict[Tuple[int, int], PersistNode] = {}
    for node in tracer.nodes:
        if node.kind == LPO and node.rid is not None:
            lpo_of.setdefault((node.rid, node.data_line), node)
    for node in tracer.nodes:
        if node.kind not in _DATA_KINDS or node.rid is None:
            continue
        gate = lpo_of.get((node.rid, node.target_line))
        if gate is None or graph.ordered(gate, node):
            continue
        report(
            "ASAP-R003",
            gate,
            node,
            f"{node.kind.upper()} for line {node.target_line:#x} of region "
            f"{node.rid:#x} is not ordered after the line's log entry; "
            "the in-place bytes can become durable before the undo entry "
            "that protects them",
            inverted=node.accepted_at < gate.accepted_at,
        )

    # R004: commit markers unordered w.r.t. dependence predecessors
    marker_of: Dict[int, PersistNode] = {}
    for node in tracer.nodes:
        if node.marker is not None:
            marker_of[node.marker[0]] = node
    for rid, marker in sorted(marker_of.items()):
        for owner in sorted(tracer.deps.get(rid, ())):
            pred = marker_of.get(owner)
            if pred is None or graph.ordered(pred, marker):
                continue
            report(
                "ASAP-R004",
                pred,
                marker,
                f"commit marker of region {rid:#x} is not ordered after "
                f"its Dependence-List predecessor {owner:#x}'s; recovery "
                "could replay an effect without its cause",
                inverted=marker.accepted_at < pred.accepted_at,
            )

    return result


# ---------------------------------------------------------------------------
# entry points: fuzz cases and workloads
# ---------------------------------------------------------------------------


def trace_case(case) -> Tuple[RaceTracer, int]:
    """One instrumented run of a fuzz case; returns (tracer, cycles)."""
    from repro.harness.fuzz import build_machine

    machine = build_machine(case)
    tracer = RaceTracer().attach(machine)
    result = machine.run()
    return tracer, result.cycles


def detect_in_case(case, source: Optional[str] = None) -> RacesResult:
    """Race-detect one fuzz case (e.g. a regression-corpus entry)."""
    from repro.harness.fuzz import build_machine

    machine = build_machine(case)
    tracer = RaceTracer().attach(machine)
    cycles = machine.run().cycles
    edges = machine.scheme.ordering_edges(machine.config)
    return analyze_trace(
        tracer,
        edges,
        cycles,
        scheme=case.scheme,
        source=source or f"case({case.scheme}, wpq={case.wpq_entries})",
        schedule=case.to_json(),
    )


def detect_in_workload(
    workload: str,
    scheme: str = "asap",
    config=None,
    params=None,
) -> RacesResult:
    """Race-detect one Table 3 workload under one scheme."""
    from repro.harness.runner import build_machine, default_config, default_params

    machine = build_machine(
        workload, scheme, config or default_config(), params or default_params()
    )
    tracer = RaceTracer().attach(machine)
    cycles = machine.run().cycles
    edges = machine.scheme.ordering_edges(machine.config)
    return analyze_trace(
        tracer, edges, cycles, scheme=scheme, source=workload
    )


# ---------------------------------------------------------------------------
# directed verification (the fuzzer's --from-races mode)
# ---------------------------------------------------------------------------


@dataclass
class VerifyOutcome:
    """Directed verification of one finding's witness."""

    finding: RaceFinding
    status: str
    runs_used: int
    evidence: str


def verify_finding(case, finding: RaceFinding, max_points: int = 5) -> VerifyOutcome:
    """Replay the witness: crash inside the window, check for divergence.

    Three confirmation signals, strongest first:

    * the finding was already ``CONFIRMED`` by an observed inversion -
      zero extra runs;
    * a directed crash point fails the differential recovery check
      (committed data lost or recovery nondeterministic);
    * recovery *defensively skipped* restores of the finding's line (the
      hardened undo-chain path): the broken chain durably materialised,
      so the race is real even though recovery survived it.
    """
    from repro.harness.fuzz import build_machine
    from repro.recovery import crash_machine, recover, verify_recovery

    if finding.status == CONFIRMED:
        return VerifyOutcome(finding, CONFIRMED, 0, finding.evidence)
    lo, hi = finding.window
    points = sorted(
        {max(1, c) for c in (lo, (lo + hi) // 2, hi, hi + 1, lo + 1)}
    )[:max_points]
    runs = 0
    lines_of_interest = {
        finding.site_a.get("data_line"),
        finding.site_b.get("data_line"),
    }
    for cycle in points:
        machine = build_machine(case)
        state = crash_machine(machine, at_cycle=cycle)
        image, report = recover(state)
        runs += 1
        verdict = verify_recovery(machine, image)
        if not verdict.ok:
            return VerifyOutcome(
                finding,
                CONFIRMED,
                runs,
                f"crash at cycle {cycle}: {verdict.explain()}",
            )
        skipped = [
            d
            for d in getattr(report, "skipped_restores", [])
            if d.get("line") in lines_of_interest
        ]
        if skipped:
            return VerifyOutcome(
                finding,
                CONFIRMED,
                runs,
                f"crash at cycle {cycle}: recovery defensively skipped "
                f"{len(skipped)} restore(s) of the racing line - the "
                "broken undo chain durably materialised",
            )
    return VerifyOutcome(
        finding,
        PLAUSIBLE,
        runs,
        f"no divergence at {len(points)} directed crash point(s); the "
        "race did not manifest in this schedule's timing",
    )

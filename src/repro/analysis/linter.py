"""Static workload linter: persistency anti-patterns without timing.

The linter executes a workload's op streams *functionally*: generators are
advanced round-robin over a plain word-granular memory image, locks are
honoured as FIFO mutexes, and no cycle accounting, cache hierarchy, or
persistence machinery runs. This is enough to evaluate every data-dependent
branch in the workload (reads return real values) while staying orders of
magnitude faster than a timed run - and it lets the rules in
:data:`~repro.analysis.rules.LINT_RULES` judge the stream op by op:

* PM stores outside an ``asap_begin``/``asap_end`` region (ASAP-L001),
* unbalanced or unterminated regions (ASAP-L002),
* lock acquire/release mismatches (ASAP-L003),
* ``asap_fence`` inside a region - a guaranteed deadlock (ASAP-L004),
* reads of another thread's uncommitted PM state (ASAP-L005),
* context switches inside regions (ASAP-L006),
* critical sections that straddle region boundaries (ASAP-L007).

Round-robin interleaving is one legal serialization of the workload, so
shadow-model consistency checks inside the generators hold exactly as they
do under the timed simulator.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.address import line_base
from repro.common.errors import AnalysisError
from repro.common.params import SystemConfig
from repro.common.units import WORD_BYTES
from repro.engine import Scheduler
from repro.mem.image import MemoryImage
from repro.runtime.heap import PageTable, PersistentHeap, VolatileHeap
from repro.runtime.locks import SimLock
from repro.sim import ops as op_types
from repro.analysis.rules import Violation

#: safety valve against runaway generators (far above any bundled workload)
_MAX_LINT_OPS = 5_000_000


class LintMachine:
    """The slice of :class:`~repro.sim.machine.Machine` workloads install
    against, with no simulation behind it.

    Provides ``heap``, ``dram_heap``, ``page_table``, ``new_lock``,
    ``bootstrap_write`` and ``spawn``; spawned generators are collected for
    the linter to drive instead of being scheduled.
    """

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        self.scheduler = Scheduler()  # only so SimLock can be constructed
        self.page_table = PageTable()
        self.heap = PersistentHeap(self.config.address_space, self.page_table)
        self.dram_heap = VolatileHeap(self.config.address_space)
        self.image = MemoryImage("lint")
        self.spawned: List[Callable] = []

    def new_lock(self, name: Optional[str] = None) -> SimLock:
        return SimLock(self.scheduler, name)

    def bootstrap_write(self, addr: int, values) -> None:
        self.image.write_range(addr, values)

    def spawn(self, gen_fn: Callable, core_id: Optional[int] = None) -> None:
        self.spawned.append(gen_fn)


@dataclass
class LintResult:
    """Findings of one lint run."""

    source: str
    violations: List[Violation] = field(default_factory=list)
    threads: int = 0
    ops_checked: int = 0

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity violation was found."""
        return not self.errors

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "threads": self.threads,
            "ops_checked": self.ops_checked,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "violations": [v.to_dict() for v in self.violations],
        }


class _LintThread:
    """Lint-time state of one workload thread."""

    def __init__(self, index: int, gen_fn: Callable):
        self.index = index
        self.gen_fn = gen_fn
        self.gen = None
        self.op_index = -1  # index of the op currently being judged
        self.region_depth = 0
        #: unique serial of the open top-level region, None outside regions
        self.region_serial: Optional[int] = None
        #: lock -> region serial current when it was acquired
        self.held: Dict[SimLock, Optional[int]] = {}
        self.blocked_on: Optional[SimLock] = None
        self.pending_result = None
        self.finished = False


class WorkloadLinter:
    """Drives a :class:`LintMachine`'s threads and applies the L-rules."""

    def __init__(self, machine: LintMachine, source: str = "<ops>"):
        self.machine = machine
        self.result = LintResult(source=source)
        self._region_serials = itertools.count(1)
        self._open_regions: set = set()
        #: PM word -> (writer thread index, writer region serial)
        self._writer: Dict[int, Tuple[int, int]] = {}
        #: lock -> (holder thread index, FIFO of waiting threads)
        self._locks: Dict[SimLock, Tuple[int, Deque[_LintThread]]] = {}

    # -- reporting ---------------------------------------------------------

    def _report(self, thread: _LintThread, rule_id: str, message: str, **details) -> None:
        self.result.violations.append(
            Violation(
                rule_id=rule_id,
                message=message,
                thread_id=thread.index,
                op_index=max(thread.op_index, 0),
                source=self.result.source,
                details=details,
            )
        )

    # -- driving -----------------------------------------------------------

    def run(self) -> LintResult:
        threads = [_LintThread(i, fn) for i, fn in enumerate(self.machine.spawned)]
        self.result.threads = len(threads)
        for t in threads:
            t.gen = t.gen_fn(t)
        budget = _MAX_LINT_OPS
        while True:
            progressed = False
            for t in threads:
                if t.finished or t.blocked_on is not None:
                    continue
                self._step(t)
                progressed = True
                budget -= 1
                if budget <= 0:
                    raise AnalysisError(
                        f"lint op budget exhausted ({_MAX_LINT_OPS} ops); "
                        "the workload does not terminate under lint execution"
                    )
            if all(t.finished for t in threads):
                break
            if not progressed:
                blocked = sorted(t.index for t in threads if not t.finished)
                raise AnalysisError(
                    f"lint deadlock: threads {blocked} are all blocked on locks"
                )
        return self.result

    def _step(self, thread: _LintThread) -> None:
        result, thread.pending_result = thread.pending_result, None
        try:
            op = thread.gen.send(result)
        except StopIteration:
            self._finish_thread(thread)
            return
        thread.op_index += 1
        self.result.ops_checked += 1
        self._dispatch(thread, op)

    def _finish_thread(self, thread: _LintThread) -> None:
        thread.finished = True
        if thread.region_depth > 0:
            self._report(
                thread,
                "ASAP-L002",
                f"thread finished with {thread.region_depth} atomic "
                "region(s) still open",
            )
            self._open_regions.discard(thread.region_serial)
        for lock in list(thread.held):
            self._report(
                thread,
                "ASAP-L003",
                f"thread finished still holding lock {lock.name!r}",
                lock=lock.name,
            )
            self._release(thread, lock)

    # -- op semantics ------------------------------------------------------

    def _dispatch(self, thread: _LintThread, op) -> None:
        if isinstance(op, op_types.Begin):
            self._do_begin(thread)
        elif isinstance(op, op_types.End):
            self._do_end(thread)
        elif isinstance(op, op_types.Write):
            self._do_write(thread, op.addr, list(op.values))
        elif isinstance(op, op_types.Read):
            self._do_read(thread, op.addr, op.nwords)
        elif isinstance(op, op_types.Compute):
            pass
        elif isinstance(op, op_types.Fence):
            if thread.region_depth > 0:
                self._report(
                    thread,
                    "ASAP-L004",
                    "asap_fence inside an open atomic region waits for a "
                    "commit that cannot happen before the region ends",
                )
        elif isinstance(op, op_types.Migrate):
            if thread.region_depth > 0:
                self._report(
                    thread,
                    "ASAP-L006",
                    f"context switch to core {op.core_id} inside an open "
                    "atomic region",
                )
        elif isinstance(op, op_types.Lock):
            self._do_lock(thread, op.lock)
        elif isinstance(op, op_types.Unlock):
            self._do_unlock(thread, op.lock)
        else:
            raise AnalysisError(f"linter cannot interpret op {op!r}")

    def _do_begin(self, thread: _LintThread) -> None:
        thread.region_depth += 1
        if thread.region_depth == 1:
            thread.region_serial = next(self._region_serials)
            self._open_regions.add(thread.region_serial)

    def _do_end(self, thread: _LintThread) -> None:
        if thread.region_depth == 0:
            self._report(thread, "ASAP-L002", "asap_end without a matching asap_begin")
            return
        thread.region_depth -= 1
        if thread.region_depth == 0:
            self._open_regions.discard(thread.region_serial)
            thread.region_serial = None

    def _do_write(self, thread: _LintThread, addr: int, values: List[int]) -> None:
        persistent = self.machine.page_table.is_persistent(addr)
        if persistent and thread.region_depth == 0:
            self._report(
                thread,
                "ASAP-L001",
                f"store of {len(values)} word(s) to persistent address "
                f"{addr:#x} outside any atomic region",
                addr=addr,
                line=line_base(addr),
            )
        self.machine.image.write_range(addr, values)
        if persistent and thread.region_depth > 0:
            base = addr & ~(WORD_BYTES - 1)
            for i in range(len(values)):
                self._writer[base + i * WORD_BYTES] = (
                    thread.index,
                    thread.region_serial,
                )

    def _do_read(self, thread: _LintThread, addr: int, nwords: int) -> None:
        base = addr & ~(WORD_BYTES - 1)
        values = []
        flagged = False
        for i in range(nwords):
            word = base + i * WORD_BYTES
            values.append(self.machine.image.read_word(word))
            writer = self._writer.get(word)
            if (
                not flagged
                and writer is not None
                and writer[0] != thread.index
                and writer[1] in self._open_regions
            ):
                flagged = True
                self._report(
                    thread,
                    "ASAP-L005",
                    f"read of persistent word {word:#x} last written by "
                    f"thread {writer[0]}'s still-open atomic region; a "
                    "crash here may roll the observed value back",
                    addr=word,
                    writer_thread=writer[0],
                )
        thread.pending_result = values

    # -- locks -------------------------------------------------------------

    def _do_lock(self, thread: _LintThread, lock: SimLock) -> None:
        state = self._locks.get(lock)
        if state is None:
            self._acquired(thread, lock)
            return
        holder, waiters = state
        if holder == thread.index:
            self._report(
                thread,
                "ASAP-L003",
                f"re-acquiring lock {lock.name!r} already held by this thread",
                lock=lock.name,
            )
            return
        thread.blocked_on = lock
        waiters.append(thread)

    def _acquired(self, thread: _LintThread, lock: SimLock) -> None:
        existing = self._locks.get(lock)
        waiters = existing[1] if existing is not None else deque()
        self._locks[lock] = (thread.index, waiters)
        thread.held[lock] = thread.region_serial

    def _do_unlock(self, thread: _LintThread, lock: SimLock) -> None:
        state = self._locks.get(lock)
        if state is None or state[0] != thread.index:
            holder = None if state is None else state[0]
            self._report(
                thread,
                "ASAP-L003",
                f"releasing lock {lock.name!r} held by "
                f"{'nobody' if holder is None else f'thread {holder}'}",
                lock=lock.name,
            )
            return
        acquire_serial = thread.held.get(lock)
        if acquire_serial != thread.region_serial:
            self._report(
                thread,
                "ASAP-L007",
                f"lock {lock.name!r} acquired and released on different "
                "sides of an atomic-region boundary; critical section and "
                "region must nest cleanly",
                lock=lock.name,
            )
        self._release(thread, lock)

    def _release(self, thread: _LintThread, lock: SimLock) -> None:
        thread.held.pop(lock, None)
        _, waiters = self._locks.pop(lock)
        while waiters:
            successor = waiters.popleft()
            if successor.finished:
                continue
            self._locks[lock] = (successor.index, waiters)
            successor.held[lock] = successor.region_serial
            successor.blocked_on = None
            break


# -- public entry points ---------------------------------------------------


def lint_machine(machine: LintMachine, source: str = "<ops>") -> LintResult:
    """Lint the op streams spawned on ``machine``."""
    return WorkloadLinter(machine, source=source).run()


def lint_threads(
    gen_fns,
    machine: Optional[LintMachine] = None,
    source: str = "<ops>",
) -> LintResult:
    """Lint raw generator functions (each called with a thread env)."""
    machine = machine or LintMachine()
    for fn in gen_fns:
        machine.spawn(fn)
    return lint_machine(machine, source=source)


def lint_workload(name: str, params=None, config: Optional[SystemConfig] = None) -> LintResult:
    """Install one bundled workload on a :class:`LintMachine` and lint it."""
    from repro.workloads import WorkloadParams, get_workload

    params = params or WorkloadParams(
        num_threads=2, ops_per_thread=24, setup_items=24
    )
    machine = LintMachine(config)
    get_workload(name, params).install(machine)
    return lint_machine(machine, source=name)


def lint_all_workloads(params=None) -> Dict[str, LintResult]:
    """Lint every bundled Table 3 workload; returns name -> result."""
    from repro.workloads import workload_names

    return {name: lint_workload(name, params) for name in workload_names()}

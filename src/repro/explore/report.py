"""Rendering: markdown summary, JSON, and CSV for explorations.

The JSON and CSV forms contain only *deterministic* data - point values,
metrics, frontier membership, sensitivities. Wall-clock times and cache
hit counts deliberately never enter them, so output is byte-identical for
any ``--jobs`` value and any cache state (CI compares the files with
``cmp``); runtime information goes to the progress stream instead.
"""

from __future__ import annotations

import json
from typing import List

from repro.explore.analysis import Analysis, analyze
from repro.explore.engine import ExplorationResult, PointOutcome
from repro.explore.space import point_label


def _axis_columns(result: ExplorationResult) -> List[str]:
    return [a.name.rsplit(".", 1)[-1] for a in result.space.axes]


def _round6(value: float) -> float:
    """Round metrics for serialisation: keeps JSON/CSV platform-stable and
    diff-friendly without losing report-relevant precision."""
    return round(float(value), 6)


def to_dict(result: ExplorationResult, analysis: Analysis = None) -> dict:
    """JSON-serialisable form of an exploration + its analysis."""
    analysis = analysis or analyze(result)
    frontier_points = {id(o) for o in analysis.frontier}

    def outcome_dict(o: PointOutcome) -> dict:
        return {
            "point": {name: value for name, value in o.point},
            "objective": _round6(o.objective),
            "area_bytes": _round6(o.area_bytes),
            "area_overhead": _round6(o.area_overhead),
            "round": o.round_index,
            "pareto": id(o) in frontier_points,
            "per_workload": {
                wl: {
                    "throughput": _round6(r.throughput),
                    "cycles_per_region": _round6(r.cycles_per_region),
                    "cycles": r.cycles,
                    "pm_writes": r.pm_writes,
                    "pm_reads": r.pm_reads,
                    "regions_completed": r.regions_completed,
                }
                for wl, r in sorted(o.per_workload.items())
            },
        }

    return {
        "space": result.space.to_dict(),
        "driver": result.driver,
        "objective": {
            "name": result.objective.name,
            "maximize": result.objective.maximize,
        },
        "rounds": result.rounds,
        "points": [outcome_dict(o) for o in result.outcomes],
        "pareto_frontier": [point_label(o.point) for o in analysis.frontier],
        "dominated": [point_label(o.point) for o in analysis.dominated],
        "sensitivity": [
            {
                "axis": s.axis,
                "low": _round6(s.low),
                "high": _round6(s.high),
                "low_value": s.low_value,
                "high_value": s.high_value,
                "swing": _round6(s.swing),
            }
            for s in analysis.sensitivities
        ],
        "baseline": {
            "point": {name: value for name, value in analysis.baseline},
            "objective": (
                None
                if analysis.baseline_objective is None
                else _round6(analysis.baseline_objective)
            ),
        },
    }


def to_json(result: ExplorationResult, analysis: Analysis = None) -> str:
    return json.dumps(to_dict(result, analysis), indent=2, sort_keys=True) + "\n"


def to_csv(result: ExplorationResult, analysis: Analysis = None) -> str:
    """One row per evaluated point, axes as leading columns."""
    analysis = analysis or analyze(result)
    frontier_points = {id(o) for o in analysis.frontier}
    axes = [a.name for a in result.space.axes]
    header = (
        _axis_columns(result)
        + [result.objective.name, "area_bytes", "area_overhead", "pareto", "round"]
    )
    lines = [",".join(header)]
    for o in result.outcomes:
        values = dict(o.point)
        row = [str(values[a]) for a in axes]
        row += [
            f"{_round6(o.objective):.6g}",
            f"{_round6(o.area_bytes):.6g}",
            f"{_round6(o.area_overhead):.6g}",
            "1" if id(o) in frontier_points else "0",
            str(o.round_index),
        ]
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def to_markdown(result: ExplorationResult, analysis: Analysis = None) -> str:
    """The human-facing summary: points table, frontier, tornado."""
    analysis = analysis or analyze(result)
    obj = result.objective
    direction = "max" if obj.maximize else "min"
    frontier_points = {id(o) for o in analysis.frontier}

    lines = [
        f"## Design-space exploration ({result.driver} driver, "
        f"{direction} {obj.name})",
        "",
        f"{len(result.outcomes)} points over "
        f"{len(result.space.axes)} axes x "
        f"{len(result.space.workloads)} workloads "
        f"({', '.join(result.space.workloads)}), scheme "
        f"`{result.space.scheme}`, {result.rounds} round(s).",
        "",
    ]

    axis_cols = _axis_columns(result)
    header = axis_cols + [obj.name, "area (KB)", "area %", "Pareto"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for o in result.outcomes:
        values = dict(o.point)
        row = [str(values[a.name]) for a in result.space.axes]
        row += [
            f"{o.objective:.4g}",
            f"{o.area_bytes / 1024:.1f}",
            f"{o.area_overhead * 100:.2f}",
            "*" if id(o) in frontier_points else "",
        ]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")

    lines.append(
        f"**Pareto frontier** ({obj.name} vs on-chip area): "
        f"{len(analysis.frontier)} point(s), "
        f"{len(analysis.dominated)} dominated point(s) pruned."
    )
    for o in analysis.frontier:
        lines.append(
            f"- `{point_label(o.point)}`: {obj.name}={o.objective:.4g}, "
            f"area={o.area_bytes / 1024:.1f} KB "
            f"({o.area_overhead * 100:.2f}%)"
        )
    lines.append("")

    if analysis.baseline_objective is None:
        lines.append(
            "**Sensitivity**: baseline point "
            f"`{point_label(analysis.baseline)}` was not evaluated by this "
            "driver; no tornado analysis."
        )
    else:
        lines.append(
            f"**Sensitivity** (objective deltas off baseline "
            f"`{point_label(analysis.baseline)}` = "
            f"{analysis.baseline_objective:.4g}), most sensitive first:"
        )
        width = max(
            [len(s.axis.rsplit(".", 1)[-1]) for s in analysis.sensitivities]
            + [4]
        )
        for s in analysis.sensitivities:
            name = s.axis.rsplit(".", 1)[-1]
            lines.append(
                f"- `{name:<{width}}`  "
                f"[{s.low:+.4g} @ {s.low_value} ... {s.high:+.4g} @ "
                f"{s.high_value}]  swing {s.swing:.4g}"
            )
    lines.append("")
    best = result.best()
    lines.append(
        f"**Best point**: `{point_label(best.point)}` with "
        f"{obj.name}={best.objective:.4g} "
        f"(area {best.area_bytes / 1024:.1f} KB)."
    )
    return "\n".join(lines) + "\n"

"""Design-space exploration: declarative sweeps over the ASAP model.

The subsystem behind ``asap-repro explore`` (see docs/EXPLORE.md):

* :mod:`repro.explore.space` - axes and sweep spaces, validated against
  the real parameter dataclasses,
* :mod:`repro.explore.drivers` - grid / random / adaptive-refine search,
* :mod:`repro.explore.engine` - point evaluation through the parallel
  cell executor and result cache,
* :mod:`repro.explore.analysis` - sensitivity and area/throughput Pareto
  frontiers,
* :mod:`repro.explore.report` - markdown / JSON / CSV rendering.
"""

from repro.explore.analysis import (
    Analysis,
    AxisSensitivity,
    analyze,
    dominates,
    pareto_frontier,
    sensitivity,
)
from repro.explore.drivers import (
    DRIVERS,
    GridDriver,
    RandomDriver,
    RefineDriver,
    make_driver,
)
from repro.explore.engine import (
    OBJECTIVES,
    ExplorationResult,
    Objective,
    PointOutcome,
    explore,
    get_objective,
    point_specs,
)
from repro.explore.report import to_csv, to_dict, to_json, to_markdown
from repro.explore.space import Axis, Point, SweepSpace, point_label

__all__ = [
    "Analysis",
    "Axis",
    "AxisSensitivity",
    "DRIVERS",
    "ExplorationResult",
    "GridDriver",
    "OBJECTIVES",
    "Objective",
    "Point",
    "PointOutcome",
    "RandomDriver",
    "RefineDriver",
    "SweepSpace",
    "analyze",
    "dominates",
    "explore",
    "get_objective",
    "make_driver",
    "pareto_frontier",
    "point_label",
    "point_specs",
    "sensitivity",
    "to_csv",
    "to_dict",
    "to_json",
    "to_markdown",
]

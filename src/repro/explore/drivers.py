"""Search drivers: which points of a sweep space get simulated, and when.

A driver is a small stateful strategy behind one method::

    propose(space, evaluated) -> [Point, ...]

``evaluated`` maps every already-simulated :data:`~repro.explore.space.Point`
to its (signed) objective value - higher is better; the engine negates
minimisation objectives before they reach a driver. An empty proposal ends
the exploration. Batches are deliberately coarse: every proposed point
fans out through :func:`repro.harness.parallel.execute`, so a driver that
proposes 32 points at once keeps ``--jobs N`` workers busy, while a
point-at-a-time driver would serialise the sweep.

Three strategies ship:

* :class:`GridDriver` - exhaustive cross product (the default),
* :class:`RandomDriver` - seeded uniform sampling without replacement,
* :class:`RefineDriver` - tornado bootstrap, then greedy bisection of the
  most sensitive axis around the incumbent best point.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional

from repro.common.errors import ConfigError
from repro.explore.space import Point, SweepSpace


class Driver:
    """Base class; subclasses implement :meth:`propose`."""

    name = "?"

    def propose(
        self, space: SweepSpace, evaluated: Mapping[Point, float]
    ) -> List[Point]:
        raise NotImplementedError


class GridDriver(Driver):
    """Every point of the cross product, in one batch."""

    name = "grid"

    def propose(self, space, evaluated):
        return [p for p in space.grid() if p not in evaluated]


class RandomDriver(Driver):
    """``samples`` distinct grid points, chosen by a seeded RNG.

    Deterministic for a given (space, samples, seed); sampling is without
    replacement and silently caps at the grid size.
    """

    name = "random"

    def __init__(self, samples: int = 16, seed: int = 0):
        if samples <= 0:
            raise ConfigError("random driver needs samples >= 1")
        self.samples = samples
        self.seed = seed

    def propose(self, space, evaluated):
        grid = space.grid()
        rng = random.Random(self.seed)
        picked = (
            grid
            if self.samples >= len(grid)
            else rng.sample(grid, self.samples)
        )
        # keep grid order so reports read row-major regardless of the draw
        order = {p: i for i, p in enumerate(grid)}
        picked.sort(key=order.__getitem__)
        return [p for p in picked if p not in evaluated]


def axis_sensitivities(
    space: SweepSpace,
    evaluated: Mapping[Point, float],
    baseline: Optional[Point] = None,
) -> Dict[str, float]:
    """Largest observed |objective delta| per axis, off ``baseline``.

    Only points differing from the baseline on exactly that axis count -
    the classic one-factor-at-a-time (tornado) reading. Axes with no such
    point score 0.
    """
    baseline = baseline or space.center_point()
    base_obj = evaluated.get(baseline)
    sens = {a.name: 0.0 for a in space.axes}
    if base_obj is None:
        return sens
    base = dict(baseline)
    for point, obj in evaluated.items():
        diff = [n for n, v in point if base.get(n) != v]
        if len(diff) == 1 and diff[0] in sens:
            sens[diff[0]] = max(sens[diff[0]], abs(obj - base_obj))
    return sens


class RefineDriver(Driver):
    """Greedy adaptive refinement.

    Round 0 proposes the tornado set: the space's center point plus, for
    each axis, the center with that axis pushed to its min and max. Each
    later round ranks axes by :func:`axis_sensitivities`, takes the
    incumbent best point, and bisects the most sensitive axis around the
    best point's value (midpoints toward the nearest tried values on each
    side), falling back to less sensitive axes when a gap cannot be split
    further. Stops after ``rounds`` refinement rounds or when no axis
    yields a new point.
    """

    name = "refine"

    def __init__(self, rounds: int = 4):
        if rounds < 0:
            raise ConfigError("refine driver needs rounds >= 0")
        self.rounds = rounds
        self._rounds_done = 0

    def _tornado_set(self, space: SweepSpace) -> List[Point]:
        center = space.center_point()
        points = [center]
        for axis in space.axes:
            lo, hi = axis.span
            for value in (lo, hi):
                p = tuple(
                    (n, value if n == axis.name else v) for n, v in center
                )
                if p not in points:
                    points.append(p)
        return points

    def _bisect(self, space, evaluated, best: Point, axis_name: str):
        best_vals = dict(best)
        value = best_vals[axis_name]
        if isinstance(value, bool):
            return []
        # values already tried on this axis at the best point's coordinates
        tried = sorted(
            {
                dict(p)[axis_name]
                for p in evaluated
                if all(
                    n == axis_name or v == best_vals[n] for n, v in p
                )
            }
        )
        axis = space.axis(axis_name)
        idx = tried.index(value)
        proposals = []
        for neighbour in (
            tried[idx - 1] if idx > 0 else None,
            tried[idx + 1] if idx + 1 < len(tried) else None,
        ):
            if neighbour is None:
                continue
            mid = axis.midpoint(*sorted((value, neighbour)))
            if mid is None:
                continue
            p = tuple(
                (n, mid if n == axis_name else v) for n, v in best
            )
            if p not in evaluated and p not in proposals:
                proposals.append(p)
        return proposals

    def propose(self, space, evaluated):
        if not evaluated:
            return self._tornado_set(space)
        if self._rounds_done >= self.rounds:
            return []
        self._rounds_done += 1
        best = max(evaluated, key=lambda p: (evaluated[p],))
        sens = axis_sensitivities(space, evaluated)
        ranked = sorted(sens, key=lambda n: (-sens[n], n))
        for axis_name in ranked:
            proposals = self._bisect(space, evaluated, best, axis_name)
            if proposals:
                return proposals
        return []


DRIVERS = {"grid": GridDriver, "random": RandomDriver, "refine": RefineDriver}


def make_driver(name: str, **kwargs) -> Driver:
    """Instantiate a driver by name; unknown kwargs are rejected by the
    driver's constructor, unknown names here."""
    try:
        cls = DRIVERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown driver {name!r}; choose from {sorted(DRIVERS)}"
        )
    return cls(**kwargs)

"""``asap-repro explore`` - the design-space exploration subcommand.

Examples::

    # 2-axis grid over two workloads, 4 workers, markdown report
    asap-repro explore --axis lh_wpq_entries=4,16,64 \\
        --axis dep_list_entries=8,32 --workloads HM Q --jobs 4

    # the same space from a JSON file, with JSON/CSV artifacts
    asap-repro explore --space sweep.json --json out.json --csv out.csv

    # seeded random sampling, then adaptive refinement
    asap-repro explore --space sweep.json --driver random --samples 12
    asap-repro explore --space sweep.json --driver refine --rounds 4

Determinism contract: the markdown/JSON/CSV outputs are byte-identical
for any ``--jobs`` value and any cache state; ``--require-cache-rate R``
additionally fails the run when fewer than ``R`` of the cells came from
the result cache (CI uses it to prove warm-sweep behaviour).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.common.errors import ConfigError, ReproError
from repro.explore.analysis import analyze
from repro.explore.drivers import DRIVERS, make_driver
from repro.explore.engine import OBJECTIVES, explore
from repro.explore.report import to_csv, to_json, to_markdown
from repro.explore.space import SweepSpace
from repro.harness.parallel import ResultCache


def _parse_value(text: str):
    """An axis value from the command line: int, float, or bool."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ConfigError(f"cannot parse axis value {text!r}")


def _parse_axis_flags(flags: List[str]) -> Dict[str, list]:
    """``name=v1,v2,...`` flags into the space's axes mapping."""
    axes: Dict[str, list] = {}
    for flag in flags:
        name, sep, values = flag.partition("=")
        if not sep or not values:
            raise ConfigError(
                f"--axis wants name=v1,v2,... , got {flag!r}"
            )
        axes[name.strip()] = [_parse_value(v) for v in values.split(",")]
    return axes


def _parse_baseline_flags(flags: List[str]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for flag in flags:
        name, sep, value = flag.partition("=")
        if not sep:
            raise ConfigError(f"--baseline wants name=value, got {flag!r}")
        out[name.strip()] = _parse_value(value)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="asap-repro explore",
        description="Explore the hardware design space of the ASAP model",
    )
    src = parser.add_argument_group("sweep space")
    src.add_argument(
        "--space",
        metavar="FILE",
        help="JSON sweep-space file (axes/workloads/scheme/baseline); "
        "--axis/--workloads flags override its fields",
    )
    src.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="add a sweep axis (repeatable); names as in "
        "'asap-repro explore --list-axes'",
    )
    src.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="Table 3 workloads to evaluate at every point",
    )
    src.add_argument("--scheme", default=None, help="persistence scheme (default asap)")
    src.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fixed axis value applied to every point (repeatable)",
    )
    search = parser.add_argument_group("search")
    search.add_argument(
        "--driver",
        default="grid",
        choices=sorted(DRIVERS),
        help="search strategy (default grid)",
    )
    search.add_argument(
        "--objective",
        default="throughput",
        choices=sorted(OBJECTIVES),
        help="optimisation target (default throughput)",
    )
    search.add_argument(
        "--samples", type=int, default=16, help="random driver: points to draw"
    )
    search.add_argument(
        "--rounds", type=int, default=4, help="refine driver: refinement rounds"
    )
    search.add_argument(
        "--seed", type=int, default=0, help="random driver: RNG seed"
    )
    execu = parser.add_argument_group("execution")
    execu.add_argument(
        "--full",
        action="store_true",
        help="use the full Table 2 machine and workload sizes (slow)",
    )
    execu.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="run cells across N worker processes (default 1)",
    )
    execu.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result-cache directory (default: $ASAP_CACHE_DIR, else "
        "~/.cache/asap-repro)",
    )
    execu.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    execu.add_argument(
        "--sanitize", action="store_true",
        help="attach the runtime invariant sanitizer to every cell",
    )
    execu.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    execu.add_argument(
        "--require-cache-rate", type=float, default=None, metavar="R",
        help="exit 1 unless at least R (0..1) of the cells were served "
        "from the result cache",
    )
    out = parser.add_argument_group("output")
    out.add_argument("--json", metavar="FILE", help="write the full report as JSON")
    out.add_argument("--csv", metavar="FILE", help="write per-point rows as CSV")
    out.add_argument(
        "--list-axes", action="store_true",
        help="print every sweepable axis (with defaults) and exit",
    )
    return parser


def _list_axes() -> str:
    from repro.common.params import AXIS_ALIASES, sweepable_axes

    lines = ["sweepable axes (canonical name, type, default):"]
    for name, target in sorted(sweepable_axes().items()):
        lines.append(
            f"  {name:<36s} {target.kind.__name__:<6s} {target.default}"
        )
    lines.append("aliases:")
    for alias, canonical in sorted(AXIS_ALIASES.items()):
        lines.append(f"  {alias:<36s} -> {canonical}")
    lines.append(
        "bare field names (e.g. lh_wpq_entries) resolve when unambiguous"
    )
    return "\n".join(lines)


def _progress(enabled: bool):
    if not enabled:
        return None

    def progress(done, total, spec, cell):
        status = "cached" if cell.cached else f"{cell.wall_seconds:.2f}s"
        print(
            f"  [explore {done}/{total}] {spec.describe()} ({status})",
            file=sys.stderr,
            flush=True,
        )

    return progress


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_axes:
        print(_list_axes())
        return 0

    try:
        file_spec: dict = {}
        if args.space:
            with open(args.space) as fh:
                file_spec = json.load(fh)
        axes = dict(file_spec.get("axes", {}))
        axes.update(_parse_axis_flags(args.axis))
        workloads = args.workloads or file_spec.get("workloads") or []
        baseline = dict(file_spec.get("baseline", {}))
        baseline.update(_parse_baseline_flags(args.baseline))
        scheme = args.scheme or file_spec.get("scheme", "asap")
        if not axes:
            parser.error("no axes: pass --axis NAME=V1,V2 or --space FILE")
        if not workloads:
            parser.error("no workloads: pass --workloads or --space FILE")
        space = SweepSpace.build(
            axes=axes, workloads=workloads, scheme=scheme, baseline=baseline
        )

        driver_kwargs = {}
        if args.driver == "random":
            driver_kwargs = dict(samples=args.samples, seed=args.seed)
        elif args.driver == "refine":
            driver_kwargs = dict(rounds=args.rounds)
        driver = make_driver(args.driver, **driver_kwargs)

        cache = None
        if not args.no_cache:
            cache = ResultCache(args.cache_dir or ResultCache.default_dir())

        result = explore(
            space,
            driver,
            objective=args.objective,
            quick=not args.full,
            jobs=max(1, args.jobs),
            cache=cache,
            progress=_progress(not args.no_progress),
            sanitize=True if args.sanitize else None,
        )
    except ReproError as exc:
        print(f"explore: {exc}", file=sys.stderr)
        return 2

    analysis = analyze(result)
    print(to_markdown(result, analysis), end="")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(to_json(result, analysis))
        print(f"wrote {args.json}", file=sys.stderr)
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(to_csv(result, analysis))
        print(f"wrote {args.csv}", file=sys.stderr)

    total_cells = len(result.outcomes) * len(space.workloads)
    cached_cells = sum(o.cached_cells for o in result.outcomes)
    rate = cached_cells / total_cells if total_cells else 0.0
    print(
        f"  [{total_cells} cells, {cached_cells} from cache "
        f"({rate * 100:.0f}%)]",
        file=sys.stderr,
    )
    if args.require_cache_rate is not None and rate < args.require_cache_rate:
        print(
            f"explore: cache rate {rate:.2f} below required "
            f"{args.require_cache_rate:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

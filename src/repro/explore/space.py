"""Declarative sweep spaces: axes over the real parameter dataclasses.

A :class:`SweepSpace` names configuration fields as :class:`Axis` entries
(``lh_wpq_entries``, ``memory.wpq_entries``, ``pm_latency_multiplier``,
...) with explicit value lists or ranges, plus the workloads and scheme to
evaluate at every point. Axis names resolve through
:func:`repro.common.params.resolve_axis` and every axis value is applied
to the base configuration at construction time, so a typo or out-of-range
value fails before any simulation runs.

Spaces round-trip through a small dict/JSON format (:meth:`SweepSpace.from_dict`)
used by ``asap-repro explore --space FILE``::

    {
      "axes": {
        "lh_wpq_entries": [4, 16, 64],
        "dep_list_entries": {"start": 8, "stop": 64, "num": 4, "scale": "log2"}
      },
      "workloads": ["HM", "Q"],
      "scheme": "asap",
      "baseline": {"wpq_entries": 16}
    }
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.params import (
    SystemConfig,
    apply_axis_values,
    resolve_axis,
)

#: one sweep point: canonical axis name -> value, in axis declaration order
Point = Tuple[Tuple[str, object], ...]


def _expand_range(spec: Mapping) -> List:
    """Expand a ``{"start":, "stop":, "num":, "scale":}`` range to values.

    ``scale`` is ``"linear"`` (default) or ``"log2"``; integer endpoints
    produce integer values (rounded, deduplicated, order preserved).
    """
    try:
        start, stop = spec["start"], spec["stop"]
    except KeyError as exc:
        raise ConfigError(f"range spec needs 'start' and 'stop': {dict(spec)}")\
            from exc
    num = int(spec.get("num", 2))
    scale = spec.get("scale", "linear")
    if num < 2:
        raise ConfigError(f"range spec needs num >= 2, got {num}")
    if scale == "linear":
        raw = [start + (stop - start) * i / (num - 1) for i in range(num)]
    elif scale == "log2":
        if start <= 0 or stop <= 0:
            raise ConfigError("log2 range needs positive endpoints")
        import math

        lo, hi = math.log2(start), math.log2(stop)
        raw = [2 ** (lo + (hi - lo) * i / (num - 1)) for i in range(num)]
    else:
        raise ConfigError(f"unknown range scale {scale!r}; use linear or log2")
    if isinstance(start, int) and isinstance(stop, int):
        raw = [int(round(v)) for v in raw]
    out: List = []
    for v in raw:
        if v not in out:
            out.append(v)
    return out


@dataclass(frozen=True)
class Axis:
    """One sweep dimension: a canonical axis name plus its candidate values.

    Use :meth:`Axis.of` to build one from user input - it canonicalises the
    name against the parameter dataclasses and rejects empty or duplicate
    value lists.
    """

    name: str
    values: Tuple

    @staticmethod
    def of(name: str, values) -> "Axis":
        target = resolve_axis(name)
        if isinstance(values, Mapping):
            values = _expand_range(values)
        values = tuple(values)
        if not values:
            raise ConfigError(f"axis {target.name} has no values")
        if len(set(values)) != len(values):
            raise ConfigError(f"axis {target.name} has duplicate values: {values}")
        return Axis(name=target.name, values=values)

    @property
    def span(self) -> Tuple:
        """(min, max) of a numeric axis's values."""
        return (min(self.values), max(self.values))

    def midpoint(self, lo, hi) -> Optional[object]:
        """The bisection value between two tried values, or None when the
        gap cannot be split further (adjacent integers, equal floats)."""
        if isinstance(lo, bool) or isinstance(hi, bool):
            return None
        mid = (lo + hi) / 2
        if isinstance(lo, int) and isinstance(hi, int):
            mid = int(round(mid))
            if mid in (lo, hi):
                return None
            return mid
        if mid in (lo, hi):
            return None
        return mid


@dataclass(frozen=True)
class SweepSpace:
    """A full design-space description.

    ``baseline`` holds axis values applied to *every* point (and defining
    the sensitivity-analysis reference); axes override it point by point.
    """

    axes: Tuple[Axis, ...]
    workloads: Tuple[str, ...]
    scheme: str = "asap"
    baseline: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if not self.axes:
            raise ConfigError("a sweep space needs at least one axis")
        if not self.workloads:
            raise ConfigError("a sweep space needs at least one workload")
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate sweep axes: {names}")
        overlap = set(names) & {n for n, _ in self.baseline}
        if overlap:
            raise ConfigError(
                f"baseline overrides swept axes: {sorted(overlap)}"
            )

    @staticmethod
    def build(
        axes: Mapping[str, object],
        workloads: Sequence[str],
        scheme: str = "asap",
        baseline: Optional[Mapping[str, object]] = None,
        validate_against: Optional[SystemConfig] = None,
    ) -> "SweepSpace":
        """Construct and *validate* a space.

        Every axis value (and the baseline) is applied to
        ``validate_against`` (default: the Table 2 :class:`SystemConfig`)
        so invalid values fail here, not mid-sweep.
        """
        from repro.workloads import (
            WorkloadParams,
            service_workload_names,
            workload_names,
        )

        built = tuple(Axis.of(name, values) for name, values in axes.items())
        base = tuple(
            (resolve_axis(n).name, v) for n, v in (baseline or {}).items()
        )
        known = workload_names() + service_workload_names()
        for w in workloads:
            if w not in known:
                raise ConfigError(f"unknown workload {w!r}; choose from {known}")
        space = SweepSpace(
            axes=built,
            workloads=tuple(workloads),
            scheme=scheme,
            baseline=base,
        )
        config = validate_against or SystemConfig()
        params = WorkloadParams()
        apply_axis_values(config, params, dict(base))
        for axis in built:
            for value in axis.values:
                apply_axis_values(config, params, {axis.name: value})
        return space

    @staticmethod
    def from_dict(data: Mapping) -> "SweepSpace":
        """Build a space from the JSON-friendly dict format."""
        unknown = set(data) - {"axes", "workloads", "scheme", "baseline"}
        if unknown:
            raise ConfigError(f"unknown sweep-space keys: {sorted(unknown)}")
        if "axes" not in data or "workloads" not in data:
            raise ConfigError("sweep space needs 'axes' and 'workloads'")
        return SweepSpace.build(
            axes=data["axes"],
            workloads=data["workloads"],
            scheme=data.get("scheme", "asap"),
            baseline=data.get("baseline"),
        )

    def to_dict(self) -> dict:
        return {
            "axes": {a.name: list(a.values) for a in self.axes},
            "workloads": list(self.workloads),
            "scheme": self.scheme,
            "baseline": dict(self.baseline),
        }

    # -- points --------------------------------------------------------------

    def axis(self, name: str) -> Axis:
        canonical = resolve_axis(name).name
        for a in self.axes:
            if a.name == canonical:
                return a
        raise ConfigError(f"{canonical} is not an axis of this space")

    def point(self, **values) -> Point:
        """A single point from per-axis values (axes not named use their
        first declared value)."""
        resolved = {resolve_axis(n).name: v for n, v in values.items()}
        unknown = set(resolved) - {a.name for a in self.axes}
        if unknown:
            raise ConfigError(f"not axes of this space: {sorted(unknown)}")
        return tuple(
            (a.name, resolved.get(a.name, a.values[0])) for a in self.axes
        )

    def center_point(self) -> Point:
        """The middle value of every axis - the sensitivity baseline."""
        return tuple(
            (a.name, a.values[(len(a.values) - 1) // 2]) for a in self.axes
        )

    def grid(self) -> List[Point]:
        """The full cross product, in row-major axis-declaration order."""
        return [
            tuple(zip([a.name for a in self.axes], combo))
            for combo in itertools.product(*(a.values for a in self.axes))
        ]

    def materialize(self, point: Point, config: SystemConfig, params):
        """Apply baseline + point values to a base (config, params) pair."""
        merged = dict(self.baseline)
        merged.update(dict(point))
        return apply_axis_values(config, params, merged)


def point_label(point: Point) -> str:
    """Compact human-readable point name (``lh_wpq_entries=16,...``)."""
    return ",".join(f"{name.rsplit('.', 1)[-1]}={value}" for name, value in point)

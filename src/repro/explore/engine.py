"""The exploration engine: drive sweep points through the cell executor.

Every point a driver proposes becomes one :class:`RunSpec` per workload,
executed by :func:`repro.harness.parallel.execute` - so sweeps inherit the
``--jobs N`` process fan-out and the content-addressed result cache for
free. A warm cache turns a repeated sweep (or one whose grid overlaps an
earlier figure's cells) into pure cache reads.

The engine evaluates whole batches between driver calls: a grid driver's
single batch saturates the worker pool, and the adaptive refiner pays one
barrier per refinement round, not per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.area import estimate_area
from repro.common.errors import ConfigError
from repro.common.params import SystemConfig
from repro.explore.drivers import Driver
from repro.explore.space import Point, SweepSpace
from repro.harness.experiment import geomean
from repro.harness.parallel import ProgressFn, ResultCache, RunSpec, execute
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.sim.stats import RunResult

#: runaway-driver backstop: a driver that keeps proposing gets cut off here
MAX_ROUNDS = 100


@dataclass(frozen=True)
class Objective:
    """One optimisation target extracted from a :class:`RunResult`.

    ``maximize`` fixes the sign convention: the engine hands drivers
    *signed* values (higher always better), while reports show the raw
    metric.
    """

    name: str
    maximize: bool
    extract: Callable[[RunResult], float]

    def signed(self, raw: float) -> float:
        return raw if self.maximize else -raw


OBJECTIVES: Dict[str, Objective] = {
    o.name: o
    for o in (
        Objective("throughput", True, lambda r: r.throughput),
        Objective("cycles_per_region", False, lambda r: r.cycles_per_region),
        Objective("pm_writes", False, lambda r: float(r.pm_writes)),
        Objective("pm_reads", False, lambda r: float(r.pm_reads)),
        Objective("p99_cycles", False, lambda r: float(r.p99_cycles)),
    )
}


def get_objective(name: str) -> Objective:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ConfigError(
            f"unknown objective {name!r}; choose from {sorted(OBJECTIVES)}"
        )


@dataclass
class PointOutcome:
    """One fully-evaluated sweep point."""

    point: Point
    #: workload name -> that workload's run at this point
    per_workload: Dict[str, RunResult]
    #: geomean of the objective metric across the space's workloads (raw,
    #: unsigned - "higher is better" only when the objective maximises)
    objective: float
    #: ASAP on-chip structure bytes at this point's configuration - the
    #: Pareto cost axis (Sec. 6.2 accounting via repro.area)
    area_bytes: float
    #: the same, relative to the baseline caches' SRAM-byte proxy
    area_overhead: float
    #: which driver round proposed this point (0-based)
    round_index: int = 0
    #: cells served from the result cache (runtime info; never serialised)
    cached_cells: int = 0


@dataclass
class ExplorationResult:
    """Everything one exploration produced, in evaluation order."""

    space: SweepSpace
    driver: str
    objective: Objective
    outcomes: List[PointOutcome] = field(default_factory=list)
    rounds: int = 0

    @property
    def evaluated(self) -> Dict[Point, float]:
        """point -> signed objective (the drivers' view)."""
        return {
            o.point: self.objective.signed(o.objective) for o in self.outcomes
        }

    def best(self) -> PointOutcome:
        if not self.outcomes:
            raise ConfigError("exploration evaluated no points")
        return max(
            self.outcomes, key=lambda o: self.objective.signed(o.objective)
        )

    def outcome_at(self, point: Point) -> Optional[PointOutcome]:
        for o in self.outcomes:
            if o.point == point:
                return o
        return None


def point_specs(
    space: SweepSpace,
    points: List[Point],
    config: Optional[SystemConfig] = None,
    params=None,
    sanitize: Optional[bool] = None,
) -> List[RunSpec]:
    """The ``RunSpec`` cells for ``points`` x ``space.workloads``.

    Cell keys are ``(point, workload)``; identical (config, params,
    scheme, workload) cells share cache entries with every experiment in
    :mod:`repro.harness.experiments`, since the cache is content-addressed
    and ignores keys.
    """
    config = config if config is not None else default_config(True)
    params = params if params is not None else default_params(True)
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for point in points:
        point_config, point_params = space.materialize(point, config, params)
        for workload in space.workloads:
            specs.append(
                RunSpec(
                    key=(point, workload),
                    workload=workload,
                    scheme=space.scheme,
                    config=point_config,
                    params=point_params,
                    sanitize=sanitize,
                )
            )
    return specs


def explore(
    space: SweepSpace,
    driver: Driver,
    objective: str = "throughput",
    quick: bool = True,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    config: Optional[SystemConfig] = None,
    params=None,
    sanitize: Optional[bool] = None,
) -> ExplorationResult:
    """Run one exploration to completion.

    The base machine is ``default_config(quick)`` /
    ``default_params(quick)`` unless an explicit ``config``/``params`` is
    given; every point overlays its axis values on that base. Results are
    deterministic for any ``jobs`` value and cache state, exactly like the
    figure experiments (see docs/HARNESS.md).
    """
    obj = get_objective(objective)
    base_config = config if config is not None else default_config(quick)
    base_params = params if params is not None else default_params(quick)
    sanitize = resolve_sanitize(sanitize)
    result = ExplorationResult(space=space, driver=driver.name, objective=obj)
    evaluated: Dict[Point, float] = {}

    for round_index in range(MAX_ROUNDS):
        batch = [p for p in driver.propose(space, evaluated) if p not in evaluated]
        if not batch:
            break
        # drop in-batch duplicates, preserving first occurrence
        batch = list(dict.fromkeys(batch))
        specs = point_specs(
            space, batch, config=base_config, params=base_params, sanitize=sanitize
        )
        cells = execute(specs, jobs=jobs, cache=cache, progress=progress)
        for point in batch:
            per_workload = {
                wl: cells[(point, wl)].result for wl in space.workloads
            }
            raw = geomean([obj.extract(r) for r in per_workload.values()])
            point_config, _ = space.materialize(point, base_config, base_params)
            area = estimate_area(point_config)
            outcome = PointOutcome(
                point=point,
                per_workload=per_workload,
                objective=raw,
                area_bytes=area.core_added_bytes + area.uncore_added_bytes,
                area_overhead=area.total_overhead,
                round_index=round_index,
                cached_cells=sum(
                    1 for wl in space.workloads if cells[(point, wl)].cached
                ),
            )
            evaluated[point] = obj.signed(raw)
            result.outcomes.append(outcome)
        result.rounds = round_index + 1
    return result

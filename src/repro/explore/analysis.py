"""Analysis layer: sensitivity and area/throughput Pareto frontiers.

Operates purely on finished :class:`~repro.explore.engine.PointOutcome`
lists, so it is trivially unit-testable with synthetic outcomes and never
touches the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.explore.engine import ExplorationResult, Objective, PointOutcome
from repro.explore.space import Point, SweepSpace

# -- Pareto frontier ---------------------------------------------------------


def dominates(a: PointOutcome, b: PointOutcome, maximize: bool) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes (objective
    and area) and strictly better on at least one. Equal points never
    dominate each other, so ties survive pruning together."""
    obj_a = a.objective if maximize else -a.objective
    obj_b = b.objective if maximize else -b.objective
    if obj_a < obj_b or a.area_bytes > b.area_bytes:
        return False
    return obj_a > obj_b or a.area_bytes < b.area_bytes


def pareto_frontier(
    outcomes: Sequence[PointOutcome], maximize: bool = True
) -> Tuple[List[PointOutcome], List[PointOutcome]]:
    """Split outcomes into (frontier, dominated).

    The frontier holds every point no other point dominates - cheaper
    *and* at-least-as-fast, or as-cheap and faster. Frontier order is by
    ascending area (then descending signed objective, then evaluation
    order), the natural reading for an area/throughput trade-off table;
    dominated points keep evaluation order.
    """
    frontier: List[PointOutcome] = []
    dominated: List[PointOutcome] = []
    for candidate in outcomes:
        if any(
            dominates(other, candidate, maximize)
            for other in outcomes
            if other is not candidate
        ):
            dominated.append(candidate)
        else:
            frontier.append(candidate)
    signed = (lambda o: o.objective) if maximize else (lambda o: -o.objective)
    order = {id(o): i for i, o in enumerate(outcomes)}
    frontier.sort(key=lambda o: (o.area_bytes, -signed(o), order[id(o)]))
    return frontier, dominated


# -- sensitivity -------------------------------------------------------------


@dataclass(frozen=True)
class AxisSensitivity:
    """Tornado bar for one axis: objective deltas off the baseline point.

    ``low``/``high`` are the most extreme *negative* and *positive*
    observed deltas among points differing from the baseline on exactly
    this axis (one-factor-at-a-time); ``low_value``/``high_value`` name
    the axis values that produced them. ``swing`` = high - low is the
    tornado bar length the report sorts by.
    """

    axis: str
    low: float
    high: float
    low_value: object
    high_value: object

    @property
    def swing(self) -> float:
        return self.high - self.low


def sensitivity(
    space: SweepSpace,
    evaluated: Mapping[Point, float],
    baseline: Optional[Point] = None,
) -> List[AxisSensitivity]:
    """One-factor-at-a-time sensitivity of the objective to every axis.

    ``evaluated`` maps points to the *raw* objective. The baseline
    defaults to the space's center point; when it was never evaluated,
    every axis reports zero deltas (the report states this). Axes are
    returned most-sensitive first (largest swing), ties by axis order.
    """
    baseline = baseline or space.center_point()
    base_obj = evaluated.get(baseline)
    base = dict(baseline)
    rows: Dict[str, AxisSensitivity] = {}
    axis_rank = {a.name: i for i, a in enumerate(space.axes)}
    for axis in space.axes:
        rows[axis.name] = AxisSensitivity(
            axis=axis.name,
            low=0.0,
            high=0.0,
            low_value=base[axis.name],
            high_value=base[axis.name],
        )
    if base_obj is None:
        return list(rows.values())
    for point, obj in evaluated.items():
        diff = [n for n, v in point if base.get(n) != v]
        if len(diff) != 1 or diff[0] not in rows:
            continue
        name = diff[0]
        delta = obj - base_obj
        value = dict(point)[name]
        row = rows[name]
        if delta < row.low:
            row = AxisSensitivity(name, delta, row.high, value, row.high_value)
        if delta > row.high:
            row = AxisSensitivity(name, row.low, delta, row.low_value, value)
        rows[name] = row
    return sorted(
        rows.values(), key=lambda r: (-r.swing, axis_rank[r.axis])
    )


# -- roll-up -----------------------------------------------------------------


@dataclass
class Analysis:
    """Everything the report renders: frontier, pruned points, tornado."""

    frontier: List[PointOutcome]
    dominated: List[PointOutcome]
    sensitivities: List[AxisSensitivity]
    baseline: Point
    baseline_objective: Optional[float]
    objective: Objective


def analyze(
    result: ExplorationResult, baseline: Optional[Point] = None
) -> Analysis:
    """Run the full analysis pass over a finished exploration."""
    raw = {o.point: o.objective for o in result.outcomes}
    baseline = baseline or result.space.center_point()
    frontier, dominated = pareto_frontier(
        result.outcomes, maximize=result.objective.maximize
    )
    return Analysis(
        frontier=frontier,
        dominated=dominated,
        sensitivities=sensitivity(result.space, raw, baseline),
        baseline=baseline,
        baseline_objective=raw.get(baseline),
        objective=result.objective,
    )

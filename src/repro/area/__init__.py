"""Section 6.2: ASAP's hardware area overhead.

The paper sizes every added structure and runs McPAT to find a total area
overhead of ~2.5% (0.8% core, 1.7% uncore). We cannot run McPAT, so
:mod:`repro.area.model` reproduces the inputs exactly - structure sizes in
bytes derived from the live :class:`~repro.common.params.SystemConfig` -
and converts them to relative overhead with a simple SRAM-density proxy:
added bits vs the baseline on-chip SRAM bits (caches + their tags), which
is what dominates both numerator and denominator in the McPAT runs.
"""

from repro.area.model import AreaReport, estimate_area

__all__ = ["AreaReport", "estimate_area"]

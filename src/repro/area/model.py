"""Analytic area model for ASAP's hardware structures (Sec. 6.2).

Structure sizes follow the paper's accounting exactly:

* CL List: 4 entries/core, each 8 CLPtrs x 1 B + 2-bit state + 4 B RID
  (the paper's "49 B" per core),
* Dependence List: 128 entries/channel x (4 Deps x 4 B + 2-bit state +
  4 B RID),
* LH-WPQ: 128 entries/channel x 70 B (6 B LogHeaderAddr + 64 B header),
* Bloom filter: 1 KB/channel,
* thread state registers: 6 x 8 B per core,
* tag extensions: PBit + LockBit + 4 B OwnerRID per cache line, across
  L1/L2 (core side) and L3 (uncore side).

Relative overhead uses on-chip SRAM bits as the proxy denominator: the
core side is compared against L1+L2 arrays (data + ~10% tags), the uncore
side against the shared L3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.params import SystemConfig
from repro.common.units import CACHE_LINE_BYTES

#: bytes per cache line of ASAP tag extension: 1 PBit + 1 LockBit + 32-bit
#: OwnerRID, rounded to the paper's per-line accounting
TAG_EXTENSION_BYTES_PER_LINE = 4.25

#: baseline tag overhead assumed for conventional caches (address tags,
#: coherence state) as a fraction of the data array
BASELINE_TAG_FRACTION = 0.10

#: ratio of referenced area (logic + register files + interconnect + the
#: SRAM itself) to bare SRAM bytes. SRAM arrays are a minority of both core
#: and uncore area in McPAT; this single factor calibrates the proxy so a
#: Table 2 chip reproduces the paper's ~2.5% total. The *inputs* (structure
#: byte counts) are exact; only this conversion is approximate.
AREA_TO_SRAM_FACTOR = 2.5


@dataclass
class AreaReport:
    """Byte counts and relative overheads of every ASAP structure."""

    core_structures: Dict[str, float] = field(default_factory=dict)
    uncore_structures: Dict[str, float] = field(default_factory=dict)
    core_baseline_bytes: float = 0.0
    uncore_baseline_bytes: float = 0.0

    @property
    def core_added_bytes(self) -> float:
        return sum(self.core_structures.values())

    @property
    def uncore_added_bytes(self) -> float:
        return sum(self.uncore_structures.values())

    @property
    def core_overhead(self) -> float:
        return self.core_added_bytes / self.core_baseline_bytes

    @property
    def uncore_overhead(self) -> float:
        return self.uncore_added_bytes / self.uncore_baseline_bytes

    @property
    def total_overhead(self) -> float:
        return (self.core_added_bytes + self.uncore_added_bytes) / (
            self.core_baseline_bytes + self.uncore_baseline_bytes
        )

    def to_table(self) -> str:
        lines = ["Sec. 6.2: ASAP area overhead (SRAM-byte proxy)"]
        lines.append("  core-side structures (all cores):")
        for name, size in self.core_structures.items():
            lines.append(f"    {name:<28s} {size:12,.0f} B")
        lines.append("  uncore-side structures:")
        for name, size in self.uncore_structures.items():
            lines.append(f"    {name:<28s} {size:12,.0f} B")
        lines.append(
            f"  core overhead:   {self.core_overhead * 100:5.2f}%  (paper: ~0.8%)"
        )
        lines.append(
            f"  uncore overhead: {self.uncore_overhead * 100:5.2f}%  (paper: ~1.7%)"
        )
        lines.append(
            f"  total overhead:  {self.total_overhead * 100:5.2f}%  (paper: ~2.5%, <3%)"
        )
        return "\n".join(lines)


def estimate_area(config: SystemConfig = None) -> AreaReport:
    """Size every ASAP structure for ``config`` (Table 2 by default)."""
    config = config or SystemConfig()
    asap = config.asap
    cores = config.num_cores
    channels = config.memory.num_channels

    cl_entry_bytes = asap.clptr_slots * 1 + 0.25 + 4  # CLPtrs + state + RID
    dep_entry_bytes = asap.dep_slots * 4 + 0.25 + 4  # Deps + state + RID
    lh_entry_bytes = 6 + CACHE_LINE_BYTES  # LogHeaderAddr + LogHeader

    l1_lines = config.l1.size_bytes // CACHE_LINE_BYTES
    l2_lines = config.l2.size_bytes // CACHE_LINE_BYTES
    l3_lines = config.l3.size_bytes // CACHE_LINE_BYTES

    report = AreaReport()
    report.core_structures = {
        "thread state registers": cores * 6 * 8,
        "CL List": cores * asap.cl_list_entries * cl_entry_bytes,
        "L1 tag extensions": cores * l1_lines * TAG_EXTENSION_BYTES_PER_LINE,
        "L2 tag extensions": cores * l2_lines * TAG_EXTENSION_BYTES_PER_LINE,
    }
    report.uncore_structures = {
        "L3 tag extensions": l3_lines * TAG_EXTENSION_BYTES_PER_LINE,
        "Dependence List": channels * asap.dependence_list_entries * dep_entry_bytes,
        "LH-WPQ": channels * asap.lh_wpq_entries * lh_entry_bytes,
        "Bloom filter": channels * asap.bloom_filter_bits / 8,
    }
    report.core_baseline_bytes = (
        cores
        * (config.l1.size_bytes + config.l2.size_bytes)
        * (1 + BASELINE_TAG_FRACTION)
        * AREA_TO_SRAM_FACTOR
    )
    report.uncore_baseline_bytes = (
        config.l3.size_bytes * (1 + BASELINE_TAG_FRACTION) * AREA_TO_SRAM_FACTOR
    )
    return report

"""ASAP: Architecture Support for Asynchronous Persistence - reproduction.

A pure-Python architectural simulator reproducing Abulila et al., ISCA
2022: hardware write-ahead logging for persistent memory with
*asynchronous region commit*, enforced-in-hardware control/data dependence
tracking, and the paper's full evaluation (SW / HWUndo / HWRedo / NP
baselines, nine Table 3 workloads, crash recovery, and every
table/figure's benchmark harness).

Quickstart::

    from repro import Machine, SystemConfig, make_scheme
    from repro.sim.ops import Begin, End, Read, Write

    machine = Machine(SystemConfig.small(), make_scheme("asap"))
    cell = machine.heap.alloc(64)          # asap_malloc

    def worker(env):
        yield Begin()                      # asap_begin
        yield Write(cell, [42])
        yield End()                        # asap_end - returns immediately;
                                           # the region commits asynchronously

    machine.spawn(worker)
    result = machine.run()
    print(result.throughput, result.pm_writes)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.common.params import (
    AsapParams,
    CacheParams,
    CoreParams,
    MemoryParams,
    SystemConfig,
)
from repro.persist import make_scheme, scheme_names
from repro.sim.machine import Machine
from repro.sim.stats import RunResult
from repro.workloads import WorkloadParams, get_workload, workload_names

__version__ = "1.1.0"

__all__ = [
    "AsapParams",
    "CacheParams",
    "CoreParams",
    "MemoryParams",
    "SystemConfig",
    "Machine",
    "RunResult",
    "make_scheme",
    "scheme_names",
    "WorkloadParams",
    "get_workload",
    "workload_names",
    "__version__",
]

#!/usr/bin/env python
"""Benchmark the fast simulation core against the reference machine.

Runs the Fig. 7 cell matrix (every Table 3 workload at 64 B and 2 KB
region sizes, under SW/HWRedo/HWUndo/ASAP/NP) twice per cell - once on
the reference machine and once on the payload-free fast core - and
writes ``BENCH_engine.json`` with per-cell wall times, simulated-ops
throughput, and speedups.

The headline number is the *total-time-weighted* speedup (total reference
seconds over total fast seconds): a per-cell geomean would let the many
cheap NP cells dilute the log-scheme cells where nearly all of the wall
time - and therefore all of the practical benefit - lives.

Both runs of a cell are also cross-checked for stat identity (the same
invariant ``tests/integration/test_vectorized_diff.py`` enforces), so a
benchmark run doubles as a differential smoke test.

Usage::

    python tools/bench_engine.py                       # quick, full matrix
    python tools/bench_engine.py --workloads HM Q      # subset
    python tools/bench_engine.py --full                # Table 2 machine
    make bench-json                                    # quick, full matrix
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.experiments.fig7 import SCHEMES, SIZES  # noqa: E402
from repro.harness.runner import (  # noqa: E402
    default_config,
    default_params,
    run_once,
)
from repro.workloads import workload_names  # noqa: E402


def _time_cell(workload, scheme, quick, size, fast, repeat):
    """Best-of-``repeat`` wall time plus the (deterministic) RunResult."""
    best = None
    result = None
    for _ in range(repeat):
        config = default_config(quick)
        params = default_params(quick, value_bytes=size)
        start = time.perf_counter()
        result = run_once(workload, scheme, config, params, fast=fast)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench(workloads, sizes, quick, repeat, verbose=True):
    cells = []
    total_ref = total_fast = 0.0
    divergences = 0
    for workload in workloads:
        for size in sizes:
            for label, scheme in [("SW", "sw")] + SCHEMES:
                ref_s, ref = _time_cell(workload, scheme, quick, size, False, repeat)
                fast_s, fast = _time_cell(workload, scheme, quick, size, True, repeat)
                identical = asdict(ref) == asdict(fast)
                if not identical:
                    divergences += 1
                total_ref += ref_s
                total_fast += fast_s
                cell = {
                    "workload": workload,
                    "scheme": label,
                    "value_bytes": size,
                    "ref_seconds": round(ref_s, 4),
                    "fast_seconds": round(fast_s, 4),
                    "ops_executed": ref.ops_executed,
                    "ref_ops_per_sec": round(ref.ops_executed / ref_s, 1),
                    "fast_ops_per_sec": round(fast.ops_executed / fast_s, 1),
                    "speedup": round(ref_s / fast_s, 3),
                    "identical_stats": identical,
                }
                cells.append(cell)
                if verbose:
                    print(
                        f"  {workload}/{label}/{size}B: ref {ref_s:.3f}s "
                        f"fast {fast_s:.3f}s  {ref_s / fast_s:.2f}x"
                        f"{'' if identical else '  ** STATS DIVERGE **'}",
                        file=sys.stderr,
                        flush=True,
                    )
    return {
        "config": "quick" if quick else "full",
        "repeat": repeat,
        "schemes": ["SW"] + [label for label, _ in SCHEMES],
        "cells": cells,
        "total": {
            "ref_seconds": round(total_ref, 3),
            "fast_seconds": round(total_fast, 3),
            "speedup_time_weighted": round(total_ref / total_fast, 3),
        },
        "divergences": divergences,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads", nargs="*", default=None, help="Table 3 subset (default: all)"
    )
    parser.add_argument(
        "--sizes", nargs="*", type=int, default=None, help="region value bytes"
    )
    parser.add_argument(
        "--full", action="store_true", help="full Table 2 machine (slow)"
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="timings are best-of-N (default 1)"
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", metavar="FILE", help="output path"
    )
    parser.add_argument(
        "--allow-divergence",
        action="store_true",
        help="report ref/fast stat divergences but exit 0 anyway "
        "(for bisecting; CI and make bench-json must not use this)",
    )
    args = parser.parse_args(argv)

    workloads = args.workloads or list(workload_names())
    sizes = args.sizes or list(SIZES)
    report = bench(workloads, sizes, quick=not args.full, repeat=max(1, args.repeat))
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    total = report["total"]
    print(
        f"wrote {args.out}: {len(report['cells'])} cells, "
        f"ref {total['ref_seconds']}s fast {total['fast_seconds']}s, "
        f"time-weighted speedup {total['speedup_time_weighted']}x, "
        f"{report['divergences']} divergences"
    )
    if report["divergences"]:
        # The benchmark doubles as a differential smoke test; a divergence
        # means the fast core is broken, so fail loudly and name the cells.
        bad = [c for c in report["cells"] if not c["identical_stats"]]
        print(
            f"ERROR: fast core diverged from the reference machine in "
            f"{len(bad)} cell(s):",
            file=sys.stderr,
        )
        for cell in bad:
            print(
                f"  {cell['workload']}/{cell['scheme']}/"
                f"{cell['value_bytes']}B",
                file=sys.stderr,
            )
        print(
            "  reproduce with: PYTHONPATH=src python -m pytest "
            "tests/integration/test_vectorized_diff.py",
            file=sys.stderr,
        )
        if not args.allow_divergence:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Historical calibration sweep used while tuning the WPQ drain model.

Kept as a development tool; the shipped defaults were chosen with it and
then refined after the baselines moved to drain-point durability, so its
score function no longer reflects the final model. Not part of the
library or test surface.
"""
import itertools
import math
import time
from dataclasses import replace
from repro.common.params import SystemConfig
from repro.harness.runner import run_once, default_params
from repro.harness.experiment import geomean

WLS = ["BN", "Q", "HM", "SS"]
TARGETS = dict(sw_traffic=2.56, hwredo_traffic=1.61, hwundo_traffic=1.92,
               f7_hwredo=1.49, f7_hwundo=1.60, f7_asap=2.25, f7_np=2.34)

def config(service, wm, lazy):
    cfg = SystemConfig.small(num_cores=8, wpq_entries=16)
    cfg = replace(cfg, memory=replace(cfg.memory, pm_write_service=service,
                                      wpq_drain_watermark=wm,
                                      wpq_lazy_drain_multiplier=lazy))
    return cfg

def evaluate(service, wm, lazy):
    params = default_params(True)
    t = {k: [] for k in ["sw_t","hwredo_t","hwundo_t","f7_sw","f7_hwredo","f7_hwundo","f7_asap","f7_np"]}
    for wl in WLS:
        cfg = config(service, wm, lazy)
        rs = {s: run_once(wl, s, cfg, params) for s in ["sw","hwredo","hwundo","asap","np"]}
        a = rs["asap"].pm_writes or 1
        t["sw_t"].append(rs["sw"].pm_writes/a)
        t["hwredo_t"].append(rs["hwredo"].pm_writes/a)
        t["hwundo_t"].append(rs["hwundo"].pm_writes/a)
        sw = rs["sw"].throughput
        for s in ["hwredo","hwundo","asap","np"]:
            t[f"f7_{s}"].append(rs[s].throughput/sw)
    return {k: geomean(v) for k, v in t.items()}

rows = []
for service, wm, lazy in itertools.product([45, 60, 90], [4, 8], [4, 8, 16]):
    t0 = time.time()
    g = evaluate(service, wm, lazy)
    score = (abs(math.log(g["sw_t"]/2.56)) + abs(math.log(g["hwredo_t"]/1.61))
             + abs(math.log(g["hwundo_t"]/1.92)) + abs(math.log(g["f7_asap"]/2.25))
             + abs(math.log(g["f7_hwundo"]/1.60)) + abs(math.log(g["f7_hwredo"]/1.49))
             + abs(math.log(g["f7_np"]/2.34)))
    rows.append((score, service, wm, lazy, g))
    print(f"svc={service:3d} wm={wm} lazy={lazy:2d} score={score:.2f} "
          f"traffic sw={g['sw_t']:.2f} redo={g['hwredo_t']:.2f} undo={g['hwundo_t']:.2f} | "
          f"f7 redo={g['f7_hwredo']:.2f} undo={g['f7_hwundo']:.2f} asap={g['f7_asap']:.2f} np={g['f7_np']:.2f} "
          f"[{time.time()-t0:.0f}s]", flush=True)
rows.sort()
print("\nBEST:", rows[0][:4])

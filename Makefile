# ASAP reproduction - common entry points

PYTHON ?= python

.PHONY: install test test-fast bench figures examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/unit tests/schemes -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.harness.run all

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info

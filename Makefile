# ASAP reproduction - common entry points

PYTHON ?= python

.PHONY: install test test-fast lint bench bench-json figures examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/unit tests/schemes -q

# Style + type gate, then the repo's own workload linter (ruff and mypy
# are optional-dependency extras; skip gracefully where not installed).
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src/repro/analysis tests/analysis tools benchmarks; \
	else \
		echo "ruff not installed (pip install -e .[lint]); skipping style check"; \
	fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed (pip install -e .[lint]); skipping type check"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro.analysis lint --json lint-report.json
	PYTHONPATH=src $(PYTHON) -m repro.analysis races --json races-report.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast-core vs reference-machine wall times over the Fig. 7 cell matrix;
# writes BENCH_engine.json (see docs/PERF.md).
bench-json:
	PYTHONPATH=src $(PYTHON) tools/bench_engine.py --out BENCH_engine.json

figures:
	$(PYTHON) -m repro.harness.run all

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
